package retry

import (
	"testing"
	"time"

	"cosched/internal/clock"
)

// TestBackoffSchedule pins the per-key schedule on a fake clock: base,
// doubling, cap, quiet-period reset, explicit reset, and key isolation
// — all exact equalities, no wall-clock slack.
func TestBackoffSchedule(t *testing.T) {
	clk := clock.NewFake(time.Unix(1_700_000_000, 0))
	b := NewBackoff(100*time.Millisecond, time.Second, clk)

	for i, want := range []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second, // capped
		time.Second, // stays capped
	} {
		if got := b.Next("alice"); got != want {
			t.Fatalf("failure %d: delay %v, want %v", i+1, got, want)
		}
		clk.Advance(10 * time.Millisecond)
	}

	// Another key is an isolated failure domain: it starts at base no
	// matter how hot alice's entry runs.
	if got := b.Next("bob"); got != 100*time.Millisecond {
		t.Fatalf("fresh key delay %v, want base", got)
	}

	// A quiet period longer than 2x the cap starts the key over.
	clk.Advance(2*time.Second + time.Millisecond)
	if got := b.Next("alice"); got != 100*time.Millisecond {
		t.Fatalf("post-quiet delay %v, want base", got)
	}

	// An explicit Reset (success) does the same immediately.
	b.Next("alice")
	b.Reset("alice")
	if got := b.Next("alice"); got != 100*time.Millisecond {
		t.Fatalf("post-reset delay %v, want base", got)
	}
}
