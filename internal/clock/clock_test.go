package clock

import (
	"testing"
	"time"
)

var t0 = time.Unix(1_700_000_000, 0)

func TestFakeAfterFiresInDeadlineOrder(t *testing.T) {
	f := NewFake(t0)
	late := f.After(3 * time.Second)
	early := f.After(time.Second)
	if got := f.Waiters(); got != 2 {
		t.Fatalf("Waiters = %d, want 2", got)
	}

	f.Advance(500 * time.Millisecond)
	select {
	case <-early:
		t.Fatal("timer fired before its deadline")
	default:
	}

	f.Advance(500 * time.Millisecond)
	if at := <-early; !at.Equal(t0.Add(time.Second)) {
		t.Fatalf("early fired at %v", at)
	}
	select {
	case <-late:
		t.Fatal("late timer fired with the early one")
	default:
	}
	f.Advance(2 * time.Second)
	if at := <-late; !at.Equal(t0.Add(3 * time.Second)) {
		t.Fatalf("late fired at %v", at)
	}
	if got := f.Waiters(); got != 0 {
		t.Fatalf("Waiters = %d after all fired, want 0", got)
	}
}

func TestFakeZeroAfterWaitsForAdvance(t *testing.T) {
	f := NewFake(t0)
	ch := f.After(0)
	select {
	case <-ch:
		t.Fatal("zero-duration timer fired before any Advance — 'armed' must stay observable")
	default:
	}
	f.Advance(0)
	<-ch
}

func TestFakeAdvanceToNext(t *testing.T) {
	f := NewFake(t0)
	if f.AdvanceToNext() {
		t.Fatal("AdvanceToNext moved an idle clock")
	}
	a := f.After(5 * time.Second)
	b := f.After(2 * time.Second)
	if !f.AdvanceToNext() {
		t.Fatal("AdvanceToNext found no timer")
	}
	if !f.Now().Equal(t0.Add(2 * time.Second)) {
		t.Fatalf("clock at %v, want the earliest deadline", f.Now())
	}
	<-b
	select {
	case <-a:
		t.Fatal("later timer fired early")
	default:
	}
	f.AdvanceToNext()
	<-a
}
