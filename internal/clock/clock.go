// Package clock is the injectable time source shared by everything in
// the repository that schedules real-time behavior: the distributed
// campaign coordinator (lease expiry, respawn backoff), the worker
// heartbeat loops, the daemon's retry backoff, and the chaos harness.
//
// Production code takes a Clock and defaults to Real; deterministic
// tests hand the same components a Fake and drive time explicitly with
// Advance, so lease-expiry and backoff behavior is a pure function of
// the scripted schedule instead of wall-clock racing.
package clock

import (
	"sort"
	"sync"
	"time"
)

// Clock is the minimal time surface the schedulers need: a current
// instant and one-shot timers. Tickers are deliberately absent — every
// periodic loop in the repo re-arms After each iteration, which is the
// only shape a fake can fire deterministically.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// After returns a channel that delivers the (then-current) time once
	// d has elapsed. The channel has capacity 1, so an abandoned timer
	// never blocks the clock.
	After(d time.Duration) <-chan time.Time
}

// Real is the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// fakeTimer is one pending After on a Fake clock.
type fakeTimer struct {
	at time.Time
	ch chan time.Time
	// seq breaks ties among timers with equal deadlines: they fire in
	// creation order, so a test's schedule is reproducible.
	seq int
}

// Fake is a manually-advanced clock. Time only moves through Advance
// (or AdvanceToNext); timers created by After fire — in deadline order,
// creation order within a deadline — the moment an Advance carries the
// clock past them. A zero-duration After fires on the next Advance, not
// immediately, keeping "timer armed" observable to tests.
type Fake struct {
	mu     sync.Mutex
	now    time.Time
	seq    int
	timers []*fakeTimer
}

// NewFake returns a fake clock starting at start.
func NewFake(start time.Time) *Fake { return &Fake{now: start} }

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// After implements Clock: the returned channel fires when Advance moves
// the clock to or past now+d.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := &fakeTimer{at: f.now.Add(d), ch: make(chan time.Time, 1), seq: f.seq}
	f.seq++
	f.timers = append(f.timers, t)
	return t.ch
}

// Advance moves the clock forward by d, firing every timer whose
// deadline is now due, in deadline order.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.fireDueLocked()
	f.mu.Unlock()
}

// AdvanceToNext jumps the clock to the earliest pending timer deadline
// and fires everything due there. It reports false when no timer is
// armed (the clock does not move).
func (f *Fake) AdvanceToNext() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.timers) == 0 {
		return false
	}
	next := f.timers[0].at
	for _, t := range f.timers[1:] {
		if t.at.Before(next) {
			next = t.at
		}
	}
	if next.After(f.now) {
		f.now = next
	}
	f.fireDueLocked()
	return true
}

// Waiters returns the number of armed timers — the synchronization
// handle tests use to know a component has parked on After before
// advancing past it.
func (f *Fake) Waiters() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.timers)
}

// fireDueLocked delivers every timer with deadline <= now and removes
// it. Caller holds f.mu.
func (f *Fake) fireDueLocked() {
	var due, rest []*fakeTimer
	for _, t := range f.timers {
		if !t.at.After(f.now) {
			due = append(due, t)
		} else {
			rest = append(rest, t)
		}
	}
	sort.Slice(due, func(i, j int) bool {
		if !due[i].at.Equal(due[j].at) {
			return due[i].at.Before(due[j].at)
		}
		return due[i].seq < due[j].seq
	})
	for _, t := range due {
		t.ch <- f.now // capacity 1, never armed twice: cannot block
	}
	f.timers = rest
}
