// Package failure is the fault simulator substrate. The paper uses the
// fault generator of Bougeret et al. / Bosilca et al. ([20, 21]) to draw
// i.i.d. fail-stop failures per processor from an exponential law of
// parameter λ; this package reimplements that generator (exponential and,
// as an extension, Weibull inter-arrival laws), plus trace recording and
// replay so that experiments are reproducible and policies can be
// compared on identical failure sequences.
package failure

import (
	"fmt"
	"math"

	"cosched/internal/rng"
)

// Fault is one fail-stop failure: processor Proc fails at time Time.
type Fault struct {
	Time float64 `json:"t"`
	Proc int     `json:"proc"`
}

// Source produces a time-ordered stream of faults. Next returns false
// when the stream is exhausted (finite traces) — generative sources are
// endless and the consumer stops pulling when its simulation ends.
type Source interface {
	Next() (Fault, bool)
}

// Law is a per-processor inter-arrival distribution for a renewal fault
// process.
type Law interface {
	// Gap draws the time from one failure of a processor to its next.
	Gap(r *rng.Source) float64
	// Rate returns the long-run failure rate (1/mean gap) used for
	// diagnostics; it may return 0 if unknown.
	Rate() float64
}

// Exponential is the memoryless law of the paper: gap ~ Exp(λ).
type Exponential struct {
	Lambda float64 // per-processor failure rate (1/MTBF)
}

// Gap implements Law.
func (e Exponential) Gap(r *rng.Source) float64 { return r.Exponential(e.Lambda) }

// Rate implements Law.
func (e Exponential) Rate() float64 { return e.Lambda }

// Weibull is the heavy-tailed extension law with shape k and scale λ_s.
// Shape < 1 models infant mortality, shape 1 reduces to Exponential.
type Weibull struct {
	Shape, Scale float64
}

// Gap implements Law.
func (w Weibull) Gap(r *rng.Source) float64 { return r.Weibull(w.Shape, w.Scale) }

// Rate implements Law.
func (w Weibull) Rate() float64 {
	if w.Scale == 0 {
		return 0
	}
	// Mean = Scale·Γ(1 + 1/Shape).
	return 1 / (w.Scale * math.Gamma(1+1/w.Shape))
}

// LawForRate builds a named law with the given long-run per-processor
// failure rate. Supported names are "" or "exponential" (shape ignored)
// and "weibull", whose scale is chosen so that the mean inter-arrival
// time is 1/rate for the given shape. It is the bridge from declarative
// scenario specs to the fault simulator.
func LawForRate(name string, rate, shape float64) (Law, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("failure: law %q needs a positive rate, got %v", name, rate)
	}
	switch name {
	case "", "exponential":
		return Exponential{Lambda: rate}, nil
	case "weibull":
		if shape <= 0 {
			return nil, fmt.Errorf("failure: weibull law needs a positive shape, got %v", shape)
		}
		return Weibull{Shape: shape, Scale: 1 / (rate * math.Gamma(1+1/shape))}, nil
	default:
		return nil, fmt.Errorf("failure: unknown law %q (want exponential or weibull)", name)
	}
}

// Null is a fault-free source.
type Null struct{}

// Next implements Source.
func (Null) Next() (Fault, bool) { return Fault{}, false }

// procEntry is a pending next-failure for one processor.
type procEntry struct {
	t    float64
	proc int
}

// procHeap is a hand-rolled min-heap of pending per-processor failures
// (earliest time first, ties on the smaller processor index). It is an
// index heap rather than a container/heap implementation so the
// steady-state fault loop pays plain slice operations — no interface
// dispatch, no boxing of procEntry values. The sift order reproduces
// container/heap's Init/Fix exactly, so fault streams are bit-identical
// to the previous implementation (the core golden tests replay them).
type procHeap []procEntry

// less orders heap positions i, j.
func (h procHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].proc < h[j].proc
}

// down sifts position i toward the leaves, exactly as container/heap.
func (h procHeap) down(i int) {
	n := len(h)
	for {
		j1 := 2*i + 1
		if j1 >= n {
			return
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2
		}
		if !h.less(j, i) {
			return
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// init heapifies the whole slice (container/heap.Init's visit order).
func (h procHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

// Renewal generates faults as p independent per-processor renewal
// processes with the given law, merged in time order via a heap. For the
// exponential law this is exactly the paper's fault model. Draw order is
// deterministic for a given seed.
type Renewal struct {
	law Law
	rng *rng.Source
	h   procHeap
}

// NewRenewal creates a renewal source over p processors.
func NewRenewal(p int, law Law, src *rng.Source) (*Renewal, error) {
	r := &Renewal{}
	if err := r.Reset(p, law, src); err != nil {
		return nil, err
	}
	return r, nil
}

// Reset re-arms the source in place for a new simulation run: fresh
// first-failure draws for p processors from law and src, reusing the
// merge heap's backing array. A Monte-Carlo worker can therefore hold
// one Renewal (and one reseeded rng.Source) per goroutine instead of
// allocating a generator per replicate; the draw sequence is identical
// to a freshly built NewRenewal with the same inputs.
func (r *Renewal) Reset(p int, law Law, src *rng.Source) error {
	if p <= 0 {
		return fmt.Errorf("failure: processor count %d must be positive", p)
	}
	if law == nil || src == nil {
		return fmt.Errorf("failure: law and rng source are required")
	}
	r.law, r.rng = law, src
	if cap(r.h) < p {
		r.h = make(procHeap, 0, p)
	}
	r.h = r.h[:0]
	for q := 0; q < p; q++ {
		r.h = append(r.h, procEntry{t: law.Gap(src), proc: q})
	}
	r.h.init()
	return nil
}

// Next implements Source; the stream is endless.
func (r *Renewal) Next() (Fault, bool) {
	e := r.h[0]
	r.h[0].t = e.t + r.law.Gap(r.rng)
	r.h.down(0)
	return Fault{Time: e.t, Proc: e.proc}, true
}

// Replay is the common-random-numbers source: it records the faults it
// pulls from an inner generator and can rewind to serve the identical
// stream again without touching the generator. A policy-comparison loop
// arms the generator once, runs its first policy through a fresh Replay
// and every later policy through Rewind — replays are pure slice reads
// (no heap sifts, no RNG draws), and a policy that outlives the recorded
// prefix transparently continues pulling (and recording) from the
// generator, whose state sits exactly at the end of the prefix.
type Replay struct {
	gen Source
	log []Fault
	pos int
}

// Reset re-arms the replay over a freshly armed generator, discarding
// the recorded prefix but keeping its capacity.
func (r *Replay) Reset(gen Source) {
	r.gen = gen
	r.log = r.log[:0]
	r.pos = 0
}

// Rewind restarts the recorded stream from the beginning.
func (r *Replay) Rewind() { r.pos = 0 }

// Next implements Source.
func (r *Replay) Next() (Fault, bool) {
	if r.pos < len(r.log) {
		f := r.log[r.pos]
		r.pos++
		return f, true
	}
	f, ok := r.gen.Next()
	if ok {
		r.log = append(r.log, f)
		r.pos++
	}
	return f, ok
}

// Poisson is the superposition fast path valid for the exponential law
// only: platform-level failures arrive with rate p·λ and each strikes a
// uniformly random processor. It is statistically identical to
// Renewal{Exponential} and cheaper for large p.
type Poisson struct {
	lambda float64
	p      int
	rng    *rng.Source
	now    float64
}

// NewPoisson creates the superposed exponential source.
func NewPoisson(p int, lambda float64, src *rng.Source) (*Poisson, error) {
	if p <= 0 {
		return nil, fmt.Errorf("failure: processor count %d must be positive", p)
	}
	if lambda <= 0 {
		return nil, fmt.Errorf("failure: rate %v must be positive (use Null for fault-free)", lambda)
	}
	if src == nil {
		return nil, fmt.Errorf("failure: rng source is required")
	}
	return &Poisson{lambda: lambda, p: p, rng: src}, nil
}

// Next implements Source; the stream is endless.
func (s *Poisson) Next() (Fault, bool) {
	s.now += s.rng.Exponential(s.lambda * float64(s.p))
	return Fault{Time: s.now, Proc: s.rng.Intn(s.p)}, true
}

// Trace replays a recorded fault sequence.
type Trace struct {
	faults []Fault
	pos    int
}

// NewTrace wraps a fault list; it must be sorted by time.
func NewTrace(faults []Fault) (*Trace, error) {
	for i := 1; i < len(faults); i++ {
		if faults[i].Time < faults[i-1].Time {
			return nil, fmt.Errorf("failure: trace not time-ordered at index %d", i)
		}
	}
	return &Trace{faults: faults}, nil
}

// Next implements Source.
func (t *Trace) Next() (Fault, bool) {
	if t.pos >= len(t.faults) {
		return Fault{}, false
	}
	f := t.faults[t.pos]
	t.pos++
	return f, true
}

// Rewind restarts the trace from the beginning, so one recorded sequence
// can be replayed against several policies (common random numbers).
func (t *Trace) Rewind() { t.pos = 0 }

// Recorder wraps a Source and remembers every fault it hands out.
type Recorder struct {
	inner Source
	log   []Fault
}

// NewRecorder wraps src.
func NewRecorder(src Source) *Recorder { return &Recorder{inner: src} }

// Next implements Source.
func (r *Recorder) Next() (Fault, bool) {
	f, ok := r.inner.Next()
	if ok {
		r.log = append(r.log, f)
	}
	return f, ok
}

// Recorded returns the faults consumed so far (shared slice; callers must
// not mutate it).
func (r *Recorder) Recorded() []Fault { return r.log }
