package failure

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"cosched/internal/rng"
)

const yearSeconds = 365.25 * 24 * 3600

func TestRenewalOrderedAndComplete(t *testing.T) {
	src, err := NewRenewal(16, Exponential{Lambda: 1e-3}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	seen := make(map[int]int)
	for i := 0; i < 5000; i++ {
		f, ok := src.Next()
		if !ok {
			t.Fatal("renewal source must be endless")
		}
		if f.Time < prev {
			t.Fatalf("faults out of order: %v after %v", f.Time, prev)
		}
		if f.Proc < 0 || f.Proc >= 16 {
			t.Fatalf("processor %d out of range", f.Proc)
		}
		prev = f.Time
		seen[f.Proc]++
	}
	for q := 0; q < 16; q++ {
		if seen[q] == 0 {
			t.Fatalf("processor %d never failed in 5000 draws", q)
		}
	}
}

func TestRenewalExponentialRate(t *testing.T) {
	// 100 processors with MTBF 10 → platform MTBF 0.1; over horizon T we
	// expect ~T/0.1 failures.
	const lambda, p, horizon = 0.1, 100, 1000.0
	src, _ := NewRenewal(p, Exponential{Lambda: lambda}, rng.New(7))
	count := 0
	for {
		f, _ := src.Next()
		if f.Time > horizon {
			break
		}
		count++
	}
	want := lambda * p * horizon
	if math.Abs(float64(count)-want) > 0.05*want {
		t.Fatalf("observed %d failures, want ~%v", count, want)
	}
}

func TestPoissonMatchesRenewalStatistically(t *testing.T) {
	const lambda, p, horizon = 1.0 / (100 * yearSeconds), 1000, 100 * yearSeconds / 10
	ren, _ := NewRenewal(p, Exponential{Lambda: lambda}, rng.New(11))
	poi, _ := NewPoisson(p, lambda, rng.New(13))
	countR, countP := 0, 0
	for {
		f, _ := ren.Next()
		if f.Time > horizon {
			break
		}
		countR++
	}
	for {
		f, _ := poi.Next()
		if f.Time > horizon {
			break
		}
		countP++
	}
	want := lambda * float64(p) * horizon // ~ 1000 * λ * horizon = 100
	if math.Abs(float64(countR)-want) > 0.35*want {
		t.Fatalf("renewal count %d far from %v", countR, want)
	}
	if math.Abs(float64(countP)-want) > 0.35*want {
		t.Fatalf("poisson count %d far from %v", countP, want)
	}
}

func TestPoissonUniformProcs(t *testing.T) {
	src, _ := NewPoisson(10, 1, rng.New(3))
	counts := make([]int, 10)
	for i := 0; i < 50000; i++ {
		f, _ := src.Next()
		counts[f.Proc]++
	}
	for q, c := range counts {
		if c < 4300 || c > 5700 {
			t.Fatalf("processor %d struck %d times, want ~5000", q, c)
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewRenewal(0, Exponential{Lambda: 1}, rng.New(1)); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := NewRenewal(4, nil, rng.New(1)); err == nil {
		t.Fatal("nil law accepted")
	}
	if _, err := NewRenewal(4, Exponential{Lambda: 1}, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := NewPoisson(4, 0, rng.New(1)); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewPoisson(-1, 1, rng.New(1)); err == nil {
		t.Fatal("negative p accepted")
	}
	if _, err := NewPoisson(4, 1, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestWeibullShapeOneMatchesExponentialRate(t *testing.T) {
	w := Weibull{Shape: 1, Scale: 100}
	if math.Abs(w.Rate()-0.01) > 1e-12 {
		t.Fatalf("Weibull(1,100) rate = %v, want 0.01", w.Rate())
	}
	e := Exponential{Lambda: 0.01}
	if e.Rate() != 0.01 {
		t.Fatal("Exponential rate accessor broken")
	}
	src, _ := NewRenewal(50, w, rng.New(5))
	count := 0
	horizon := 10000.0
	for {
		f, _ := src.Next()
		if f.Time > horizon {
			break
		}
		count++
	}
	want := 50 * horizon / 100
	if math.Abs(float64(count)-want) > 0.2*want {
		t.Fatalf("Weibull(1) renewal count %d, want ~%v", count, want)
	}
}

func TestWeibullRateZeroScale(t *testing.T) {
	if (Weibull{Shape: 1, Scale: 0}).Rate() != 0 {
		t.Fatal("zero-scale Weibull should report rate 0")
	}
}

func TestNullSource(t *testing.T) {
	var n Null
	if _, ok := n.Next(); ok {
		t.Fatal("Null source produced a fault")
	}
}

func TestTraceReplayAndRewind(t *testing.T) {
	faults := []Fault{{1, 3}, {2, 1}, {5, 0}}
	tr, err := NewTrace(faults)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for _, want := range faults {
			got, ok := tr.Next()
			if !ok || got != want {
				t.Fatalf("replay %d: got %+v ok=%v, want %+v", i, got, ok, want)
			}
		}
		if _, ok := tr.Next(); ok {
			t.Fatal("trace should be exhausted")
		}
		tr.Rewind()
	}
}

// TestReplayRecordsAndRewinds pins the common-random-numbers source:
// the rewound stream is identical to the recorded prefix, a consumer
// outliving the prefix continues pulling from the generator exactly
// where recording stopped, and Reset discards the log.
func TestReplayRecordsAndRewinds(t *testing.T) {
	gen, err := NewRenewal(4, Exponential{Lambda: 1e-3}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	var r Replay
	r.Reset(gen)
	first := make([]Fault, 10)
	for i := range first {
		f, ok := r.Next()
		if !ok {
			t.Fatal("renewal-backed replay ended")
		}
		first[i] = f
	}
	// Reference continuation: an identical generator advanced past the
	// same 10 draws tells us what the replay must produce after the
	// recorded prefix runs out.
	ref, err := NewRenewal(4, Exponential{Lambda: 1e-3}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ref.Next()
	}
	r.Rewind()
	for i, want := range first {
		got, ok := r.Next()
		if !ok || got != want {
			t.Fatalf("rewind draw %d: got %+v ok=%v, want %+v", i, got, ok, want)
		}
	}
	for i := 0; i < 5; i++ {
		got, _ := r.Next()
		want, _ := ref.Next()
		if got != want {
			t.Fatalf("post-prefix draw %d: got %+v, want %+v (generator state drifted)", i, got, want)
		}
	}
	// A second rewind covers the grown log (10 recorded + 5 appended).
	r.Rewind()
	for i := 0; i < 15; i++ {
		if _, ok := r.Next(); !ok {
			t.Fatalf("grown log ended at %d", i)
		}
	}
	r.Reset(gen)
	if f, ok := r.Next(); !ok || f == first[0] {
		t.Fatalf("Reset kept the old log head %+v", f)
	}
}

func TestTraceRejectsUnordered(t *testing.T) {
	if _, err := NewTrace([]Fault{{5, 0}, {1, 0}}); err == nil {
		t.Fatal("unordered trace accepted")
	}
}

func TestRecorder(t *testing.T) {
	src, _ := NewPoisson(4, 0.5, rng.New(21))
	rec := NewRecorder(src)
	var got []Fault
	for i := 0; i < 10; i++ {
		f, _ := rec.Next()
		got = append(got, f)
	}
	logged := rec.Recorded()
	if len(logged) != 10 {
		t.Fatalf("recorded %d faults, want 10", len(logged))
	}
	for i := range got {
		if logged[i] != got[i] {
			t.Fatal("recorded faults differ from handed-out faults")
		}
	}
	// A trace built from the recording replays identically.
	tr, err := NewTrace(logged)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range got {
		f, ok := tr.Next()
		if !ok || f != want {
			t.Fatal("trace replay differs from recording")
		}
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	src, _ := NewPoisson(8, 0.25, rng.New(31))
	faults := Collect(src, 100, 0)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, faults); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(faults) {
		t.Fatalf("round trip length %d, want %d", len(back), len(faults))
	}
	for i := range faults {
		if back[i] != faults[i] {
			t.Fatalf("round trip fault %d: %+v != %+v", i, back[i], faults[i])
		}
	}
}

func TestReadTraceRejectsGarbageAndDisorder(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	bad := "{\"t\":5,\"proc\":0}\n{\"t\":1,\"proc\":0}\n"
	if _, err := ReadTrace(strings.NewReader(bad)); err == nil {
		t.Fatal("unordered file accepted")
	}
}

func TestCollectHorizonAndLimit(t *testing.T) {
	src, _ := NewPoisson(4, 1, rng.New(41))
	byLimit := Collect(src, 5, 0)
	if len(byLimit) != 5 {
		t.Fatalf("limit collect returned %d", len(byLimit))
	}
	src2, _ := NewPoisson(4, 1, rng.New(41))
	byHorizon := Collect(src2, 1000000, 1.0)
	for _, f := range byHorizon {
		if f.Time >= 1.0 {
			t.Fatal("horizon not respected")
		}
	}
}

func TestDeterministicStreams(t *testing.T) {
	a, _ := NewRenewal(32, Exponential{Lambda: 0.01}, rng.New(77))
	b, _ := NewRenewal(32, Exponential{Lambda: 0.01}, rng.New(77))
	for i := 0; i < 1000; i++ {
		fa, _ := a.Next()
		fb, _ := b.Next()
		if fa != fb {
			t.Fatalf("renewal streams diverged at %d", i)
		}
	}
}

func BenchmarkRenewalNext(b *testing.B) {
	src, _ := NewRenewal(5000, Exponential{Lambda: 1e-9}, rng.New(1))
	for i := 0; i < b.N; i++ {
		src.Next()
	}
}

func BenchmarkPoissonNext(b *testing.B) {
	src, _ := NewPoisson(5000, 1e-9, rng.New(1))
	for i := 0; i < b.N; i++ {
		src.Next()
	}
}
