package failure

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteTrace serializes faults as JSON Lines (one fault per line), the
// interchange format of cmd/faultgen.
func WriteTrace(w io.Writer, faults []Fault) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range faults {
		if err := enc.Encode(&faults[i]); err != nil {
			return fmt.Errorf("failure: encoding fault %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSON Lines fault trace and validates time ordering.
func ReadTrace(r io.Reader) ([]Fault, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var out []Fault
	for {
		var f Fault
		if err := dec.Decode(&f); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("failure: parsing trace entry %d: %w", len(out), err)
		}
		if n := len(out); n > 0 && f.Time < out[n-1].Time {
			return nil, fmt.Errorf("failure: trace not time-ordered at entry %d", n)
		}
		out = append(out, f)
	}
	return out, nil
}

// Collect pulls up to limit faults from src, stopping early at horizon
// (exclusive) if horizon > 0. It is the bridge from generative sources to
// fixed traces.
func Collect(src Source, limit int, horizon float64) []Fault {
	var out []Fault
	for len(out) < limit {
		f, ok := src.Next()
		if !ok {
			break
		}
		if horizon > 0 && f.Time >= horizon {
			break
		}
		out = append(out, f)
	}
	return out
}
