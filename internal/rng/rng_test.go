package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seed diverged at step %d", i)
		}
	}
}

func TestReseedRestartsStream(t *testing.T) {
	a := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = a.Uint64()
	}
	a.Reseed(7)
	for i := range first {
		if got := a.Uint64(); got != first[i] {
			t.Fatalf("after Reseed, step %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds agree on %d/100 outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling streams agree on %d/100 outputs", same)
	}
	// Splitting must be reproducible from the parent seed.
	e1, e2 := New(99).Split(), New(99).Split()
	for i := 0; i < 100; i++ {
		if e1.Uint64() != e2.Uint64() {
			t.Fatal("child streams are not reproducible from parent seed")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		g := r.Float64Open()
		if g <= 0 || g > 1 {
			t.Fatalf("Float64Open out of (0,1]: %v", g)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn(7) value %d has suspicious count %d", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExponentialMean(t *testing.T) {
	r := New(17)
	const rate = 0.25 // mean 4
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.Exponential(rate)
		if x < 0 {
			t.Fatalf("negative exponential variate %v", x)
		}
		sum += x
	}
	mean := sum / n
	if math.Abs(mean-4) > 0.05 {
		t.Fatalf("exponential mean = %v, want ~4", mean)
	}
}

func TestExponentialMemorylessTail(t *testing.T) {
	// P(X > 2/rate) should be about e^-2.
	r := New(23)
	const rate = 1.5
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		if r.Exponential(rate) > 2/rate {
			count++
		}
	}
	got := float64(count) / n
	want := math.Exp(-2)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("tail probability = %v, want ~%v", got, want)
	}
}

func TestWeibullShapeOneIsExponential(t *testing.T) {
	// Weibull(k=1, scale) has mean = scale.
	r := New(31)
	const scale = 3.0
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Weibull(1, scale)
	}
	mean := sum / n
	if math.Abs(mean-scale) > 0.05 {
		t.Fatalf("Weibull(1,%v) mean = %v, want ~%v", scale, mean, scale)
	}
}

func TestWeibullMeanShapeHalf(t *testing.T) {
	// Mean of Weibull(k, λ) is λ·Γ(1+1/k); for k = 0.5, Γ(3) = 2, mean = 2λ.
	r := New(37)
	const scale = 1.0
	const n = 400000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Weibull(0.5, scale)
	}
	mean := sum / n
	if math.Abs(mean-2*scale) > 0.05 {
		t.Fatalf("Weibull(0.5,%v) mean = %v, want ~%v", scale, mean, 2*scale)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(41)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(43)
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		r.Reseed(seed)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(47)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, x := range xs {
		sum2 += x
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed multiset: sum %d -> %d", sum, sum2)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(53)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("Uniform(10,20) = %v out of range", v)
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b   uint64
		hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkExponential(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Exponential(1e-9)
	}
}
