package rng

import "testing"

func TestSubSeedDeterministicAndSpread(t *testing.T) {
	if SubSeed(1, 2, 3) != SubSeed(1, 2, 3) {
		t.Fatal("SubSeed not deterministic")
	}
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		seen[SubSeed(1, i, 0)] = true
		seen[SubSeed(1, 0, i)] = true
	}
	if len(seen) != 1999 { // (1,0,0) counted once
		t.Fatalf("SubSeed collides on trivially different paths: %d distinct", len(seen))
	}
}

func TestSubSeedOrderSensitive(t *testing.T) {
	if SubSeed(1, 2, 3) == SubSeed(1, 3, 2) {
		t.Fatal("SubSeed ignores path order")
	}
	if SubSeed(1) == SubSeed(2) {
		t.Fatal("SubSeed ignores the master seed")
	}
	if SubSeed(1, 5) == SubSeed(1) {
		t.Fatal("SubSeed ignores path extension")
	}
}

func TestNewStreamMatchesSubSeed(t *testing.T) {
	a := NewStream(9, 1, 2)
	b := New(SubSeed(9, 1, 2))
	for i := 0; i < 8; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("NewStream and New(SubSeed(...)) diverge")
		}
	}
}
