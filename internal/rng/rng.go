// Package rng provides a small, deterministic random-number substrate for
// the simulator. All stochastic behaviour in cosched flows through this
// package so that experiments are reproducible bit-for-bit across runs and
// Go versions (the stdlib generators do not guarantee stable streams).
//
// The generator is xoshiro256**, seeded through splitmix64 as recommended
// by its authors. Sources can be split into independent child streams,
// which the experiment harness uses to give every replicate its own
// deterministic stream derived from a master seed.
package rng

import "math"

// Source is a deterministic pseudo-random source (xoshiro256**).
// It is not safe for concurrent use; fork independent streams with Split.
type Source struct {
	s [4]uint64
}

// splitmix64 advances a 64-bit state and returns the next output.
// It is used for seeding and for deriving child stream seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed via splitmix64.
func New(seed uint64) *Source {
	var r Source
	r.Reseed(seed)
	return &r
}

// Reseed resets the source to the stream determined by seed.
func (r *Source) Reseed(seed uint64) {
	st := seed
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	// xoshiro256** requires a non-zero state; splitmix64 of any seed is
	// astronomically unlikely to produce all zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// SubSeed derives a stream seed from a master seed and a path of stream
// identifiers (e.g. a named stream kind, a grid-point index, a replicate
// index). The derivation is a splitmix64 absorption of every path
// element, so seeds are deterministic, order-sensitive, and well spread
// even for adjacent integer paths. The campaign runner uses it to give
// every run unit its own stream regardless of which shard executes it.
func SubSeed(master uint64, path ...uint64) uint64 {
	st := master
	h := splitmix64(&st)
	for _, p := range path {
		st = h ^ p
		h = splitmix64(&st)
	}
	return h
}

// NewStream returns a Source seeded with SubSeed(master, path...).
func NewStream(master uint64, path ...uint64) *Source {
	return New(SubSeed(master, path...))
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Split returns a new Source whose stream is independent of r's
// continuation. The child is derived from the parent's next output, so a
// parent seeded identically always yields the same sequence of children.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in (0, 1]; useful as input to
// logarithms without a zero guard.
func (r *Source) Float64Open() float64 {
	return (float64(r.Uint64()>>11) + 1) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's unbiased bounded generation.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exponential returns an exponentially distributed variate with the given
// rate (mean 1/rate). It panics if rate <= 0.
func (r *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	return -math.Log(r.Float64Open()) / rate
}

// Weibull returns a Weibull variate with the given shape k and scale λ,
// via inversion. It panics unless both parameters are positive.
func (r *Source) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Weibull with non-positive parameter")
	}
	return scale * math.Pow(-math.Log(r.Float64Open()), 1/shape)
}

// Normal returns a standard normal variate (Box–Muller, polar form).
func (r *Source) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of the first n elements using swap,
// mirroring the stdlib contract.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
