package shape

import (
	"fmt"
	"math"

	"cosched/internal/experiments"
	"cosched/internal/stats"
)

// Claim couples a paper statement with the checks that verify it.
type Claim struct {
	Figure string // paper figure id: "5a", "7", ...
	Text   string // the paper's qualitative statement (§6.2)
}

// ClaimText returns the paper's statement attached to a figure id.
func ClaimText(id string) string {
	switch id {
	case "5a", "5b":
		return "Fault-free, n=100: redistribution gains ~20% on small platforms and " +
			"vanishes as p grows; heterogeneous packs (5b) gain more."
	case "6a", "6b":
		return "Fault-free, n=1000: same trends at larger scale; heterogeneity (6b) amplifies gains."
	case "7":
		return "More tasks increase the gain (>40% at n=1000): with many tasks each holds " +
			"few processors, giving the heuristics flexibility."
	case "8":
		return "More processors decrease the gain, but at least ~10% remains everywhere."
	case "10":
		return "Lower MTBF degrades all heuristics (p=1000); at very low MTBF " +
			"ShortestTasksFirst overtakes IteratedGreedy."
	case "11":
		return "At p=5000 and low MTBF, IteratedGreedy's aggressive allocations backfire " +
			"(it approaches/exceeds the no-redistribution baseline); STF is safer."
	case "12":
		return "Cheaper checkpoints shrink the gap between the fault context and the " +
			"fault-free context."
	case "13a", "13b", "13c":
		return "The MTBF sweep at decreasing checkpoint cost (c=1, 0.1, 0.01) flattens: " +
			"with cheap checkpoints the failure-context curves sit on the fault-free curve."
	case "14":
		return "More parallel tasks (small f) benefit more from redistribution; gains " +
			"shrink as the sequential fraction grows."
	case "9":
		return "Single run: IteratedGreedy reduces the predicted makespan faster than " +
			"ShortestTasksFirst by moving processors to the critical task more aggressively, " +
			"yielding a larger allocation spread."
	default:
		return ""
	}
}

// CheckFigure runs the shape checks of one reproduced figure table.
// Unknown ids return no checks.
func CheckFigure(id string, t *stats.Table) []Check {
	switch id {
	case "5a", "5b", "6a", "6b":
		return checkFaultFreeFigure(t)
	case "7":
		return checkFigure7(t)
	case "8":
		return checkFigure8(t)
	case "10":
		return checkFigure10(t)
	case "11":
		return checkFigure11(t)
	case "12":
		return checkFigure12(t)
	case "13a":
		return checkFigure13(t, 0.30)
	case "13b":
		return checkFigure13(t, 0.10)
	case "13c":
		return checkFigure13(t, 0.03)
	case "14":
		return checkFigure14(t)
	case "9a":
		return checkFigure9a(t)
	case "9b":
		return checkFigure9b(t)
	default:
		return nil
	}
}

// checkFigure9a: by the end of the single run, both redistribution
// policies predict a smaller makespan than no-redistribution.
func checkFigure9a(t *stats.Table) []Check {
	out := []Check{}
	for _, pol := range []string{"Iterated greedy", "Shortest tasks first"} {
		name := fmt.Sprintf("final predicted makespan of %q below no-redistribution", pol)
		ig, norc := Last(t, pol), Last(t, "No redistribution")
		if math.IsNaN(ig) || math.IsNaN(norc) {
			out = append(out, fail(name, "series missing"))
		} else if ig < norc {
			out = append(out, pass(name, "%.4g vs %.4g", ig, norc))
		} else {
			out = append(out, fail(name, "%.4g vs %.4g", ig, norc))
		}
	}
	return out
}

// checkFigure9b: redistribution spreads the allocation — the policies'
// peak stddev exceeds the static no-redistribution allocation's.
func checkFigure9b(t *stats.Table) []Check {
	maxOf := func(name string) float64 {
		s := t.SeriesByName(name)
		if s == nil {
			return math.NaN()
		}
		worst := math.Inf(-1)
		for _, v := range s.Y {
			if v > worst {
				worst = v
			}
		}
		return worst
	}
	base := maxOf("No redistribution")
	out := []Check{}
	for _, pol := range []string{"Iterated greedy", "Shortest tasks first"} {
		name := fmt.Sprintf("%q spreads allocations beyond the static schedule", pol)
		v := maxOf(pol)
		if math.IsNaN(v) || math.IsNaN(base) {
			out = append(out, fail(name, "series missing"))
		} else if v > base {
			out = append(out, pass(name, "peak stddev %.3g vs %.3g", v, base))
		} else {
			out = append(out, fail(name, "peak stddev %.3g vs %.3g", v, base))
		}
	}
	return out
}

func checkFaultFreeFigure(t *stats.Table) []Check {
	return []Check{
		CheckGainAtLeast(t, experiments.SeriesFFLocal, t.X[0], 0.10),
		CheckGainAtLeast(t, experiments.SeriesFFGreedy, t.X[0], 0.10),
		CheckConvergesToBaseline(t, experiments.SeriesFFLocal, 0.15),
		// §6.2: "the two heuristics have a very similar behavior" — the
		// claim is closeness, not a strict ordering.
		closeMeans(t, experiments.SeriesFFGreedy, experiments.SeriesFFLocal, 0.02),
		CheckAllBelow(t, experiments.SeriesFFLocal, 1.0+1e-9),
	}
}

// closeMeans checks |mean(a) − mean(b)| ≤ tol.
func closeMeans(t *stats.Table, a, b string, tol float64) Check {
	name := fmt.Sprintf("%q and %q behave very similarly (|Δmean| ≤ %.2f)", a, b, tol)
	ma, mb := MeanY(t, a), MeanY(t, b)
	d := ma - mb
	if d < 0 {
		d = -d
	}
	if d <= tol {
		return pass(name, "means %.3f vs %.3f", ma, mb)
	}
	return fail(name, "means %.3f vs %.3f", ma, mb)
}

func checkFigure7(t *stats.Table) []Check {
	last := t.X[len(t.X)-1]
	return []Check{
		CheckTrend(t, experiments.SeriesIGEG, false, 0.03),
		CheckGainAtLeast(t, experiments.SeriesIGEG, last, 0.40),
		CheckGainAtLeast(t, experiments.SeriesSTFEL, last, 0.40),
		CheckAllBelow(t, experiments.SeriesFaultFree, 1.0),
		CheckOrder(t, experiments.SeriesFaultFree, experiments.SeriesIGEG, 0.0),
	}
}

func checkFigure8(t *stats.Table) []Check {
	return []Check{
		CheckTrend(t, experiments.SeriesIGEG, true, 0.04),
		CheckAllBelow(t, experiments.SeriesIGEG, 0.90),
		CheckAllBelow(t, experiments.SeriesSTFEL, 0.90),
		CheckGainAtLeast(t, experiments.SeriesIGEG, t.X[0], 0.30),
		CheckOrder(t, experiments.SeriesFaultFree, experiments.SeriesIGEL, 0.0),
	}
}

func checkFigure10(t *stats.Table) []Check {
	return []Check{
		// Degradation at low MTBF: worse (higher) at 5y than at 125y.
		orderAt(t, experiments.SeriesIGEG, 125, 5, "low MTBF degrades IteratedGreedy"),
		orderAt(t, experiments.SeriesSTFEL, 125, 5, "low MTBF degrades ShortestTasksFirst"),
		// The paper's crossover: STF ≤ IG at MTBF 5 years.
		crossover(t, 5),
		CheckAllBelow(t, experiments.SeriesSTFEL, 1.0),
	}
}

func checkFigure11(t *stats.Table) []Check {
	return []Check{
		orderAt(t, experiments.SeriesIGEG, 125, 5, "low MTBF degrades IteratedGreedy"),
		crossover(t, 5),
		crossover(t, 10),
		// IG at MTBF 5 must be close to (or beyond) the baseline.
		igNearBaseline(t),
	}
}

func checkFigure12(t *stats.Table) []Check {
	return []Check{
		CheckGapShrinks(t, experiments.SeriesIGEG, experiments.SeriesFaultFree, 2),
		CheckGapShrinks(t, experiments.SeriesSTFEL, experiments.SeriesFaultFree, 2),
		// With cheap checkpoints the failure baseline loses little, so the
		// normalized heuristic value climbs towards 1 as c → 0: the series
		// decreases along the ascending-c sweep.
		CheckTrend(t, experiments.SeriesIGEG, false, 0.03),
		CheckGainAtLeast(t, experiments.SeriesIGEG, 1, 0.20),
	}
}

// checkFigure13 verifies one panel of the MTBF × checkpoint-cost grid:
// the spread of the IG curve across the MTBF range must stay within
// flatTol — the thresholds per panel (c = 1, 0.1, 0.01) decrease, which
// encodes the paper's "curves flatten as checkpoints get cheap".
func checkFigure13(t *stats.Table, flatTol float64) []Check {
	s := t.SeriesByName(experiments.SeriesIGEG)
	name := fmt.Sprintf("IG spread across MTBF ≤ %.2f (flattens as c falls)", flatTol)
	var spreadCheck Check
	if s == nil {
		spreadCheck = fail(name, "series missing")
	} else {
		lo, hi := s.Y[0], s.Y[0]
		for _, v := range s.Y {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo <= flatTol {
			spreadCheck = pass(name, "spread %.4f", hi-lo)
		} else {
			spreadCheck = fail(name, "spread %.4f", hi-lo)
		}
	}
	return []Check{
		spreadCheck,
		CheckAllBelow(t, experiments.SeriesIGEG, 1.0),
	}
}

func checkFigure14(t *stats.Table) []Check {
	return []Check{
		CheckTrend(t, experiments.SeriesIGEG, true, 0.03),
		CheckTrend(t, experiments.SeriesSTFEL, true, 0.03),
		CheckGainAtLeast(t, experiments.SeriesIGEG, 0, 0.30),
		// Gains nearly gone at f = 0.5.
		CheckAllBelow(t, experiments.SeriesSTFEL, 1.0),
	}
}

// orderAt checks series(xGood) ≤ series(xBad): the series is better at
// the "good" end of the sweep.
func orderAt(t *stats.Table, series string, xGood, xBad float64, label string) Check {
	good, bad := At(t, series, xGood), At(t, series, xBad)
	name := fmt.Sprintf("%s: y(%g) ≤ y(%g)", label, xGood, xBad)
	if good <= bad {
		return pass(name, "%.3f vs %.3f", good, bad)
	}
	return fail(name, "%.3f vs %.3f", good, bad)
}

// crossover checks the paper's low-MTBF claim: STF ≤ IG at the given x.
func crossover(t *stats.Table, x float64) Check {
	stf := At(t, experiments.SeriesSTFEL, x)
	ig := At(t, experiments.SeriesIGEG, x)
	name := fmt.Sprintf("STF ≤ IG at MTBF %g years", x)
	if stf <= ig+1e-9 {
		return pass(name, "STF %.3f vs IG %.3f", stf, ig)
	}
	return fail(name, "STF %.3f vs IG %.3f", stf, ig)
}

// igNearBaseline checks Figure 11's headline: at MTBF 5 years and
// p=5000, IteratedGreedy is within a few percent of (or worse than) the
// no-redistribution baseline.
func igNearBaseline(t *stats.Table) Check {
	v := At(t, experiments.SeriesIGEG, 5)
	name := "IG ≥ 0.93 of the baseline at MTBF 5 years"
	if v >= 0.93 {
		return pass(name, "IG %.3f", v)
	}
	return fail(name, "IG %.3f", v)
}
