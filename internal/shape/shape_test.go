package shape

import (
	"math"
	"testing"

	"cosched/internal/experiments"
	"cosched/internal/stats"
)

func tableWith(x []float64, series map[string][]float64) *stats.Table {
	t := &stats.Table{X: x}
	// Deterministic insertion order for reproducible tests.
	for _, name := range []string{
		experiments.SeriesNoRC, experiments.SeriesIGEG, experiments.SeriesIGEL,
		experiments.SeriesSTFEG, experiments.SeriesSTFEL, experiments.SeriesFaultFree,
		experiments.SeriesFFNoRC, experiments.SeriesFFGreedy, experiments.SeriesFFLocal,
		"a", "b",
	} {
		if ys, ok := series[name]; ok {
			if err := t.AddSeries(name, ys); err != nil {
				panic(err)
			}
		}
	}
	return t
}

func TestTrends(t *testing.T) {
	if !TrendUp([]float64{1, 2, 3}, 0) || TrendUp([]float64{3, 2}, 0) {
		t.Fatal("TrendUp broken")
	}
	if !TrendDown([]float64{3, 2, 1}, 0) || TrendDown([]float64{1, 2}, 0) {
		t.Fatal("TrendDown broken")
	}
	// Tolerance forgives small reversals.
	if !TrendUp([]float64{1, 0.995, 1.2}, 0.01) {
		t.Fatal("tolerance not applied")
	}
	if !TrendDown([]float64{1, 1.005, 0.8}, 0.01) {
		t.Fatal("tolerance not applied on the way down")
	}
}

func TestAccessors(t *testing.T) {
	tab := tableWith([]float64{10, 20, 30}, map[string][]float64{"a": {1, 2, 3}})
	if First(tab, "a") != 1 || Last(tab, "a") != 3 {
		t.Fatal("endpoint accessors broken")
	}
	if At(tab, "a", 19) != 2 {
		t.Fatal("At should snap to the nearest x")
	}
	if !math.IsNaN(At(tab, "zz", 10)) || !math.IsNaN(MeanY(tab, "zz")) {
		t.Fatal("missing series should yield NaN")
	}
	if MeanY(tab, "a") != 2 {
		t.Fatal("MeanY broken")
	}
	if Gain(0.75) != 0.25 {
		t.Fatal("Gain broken")
	}
}

func TestMaxGap(t *testing.T) {
	tab := tableWith([]float64{1, 2}, map[string][]float64{"a": {1, 3}, "b": {0.5, 1}})
	if MaxGap(tab, "a", "b") != 2 {
		t.Fatalf("MaxGap = %v, want 2", MaxGap(tab, "a", "b"))
	}
	if !math.IsNaN(MaxGap(tab, "a", "zz")) {
		t.Fatal("missing series should yield NaN")
	}
}

func TestCheckPrimitives(t *testing.T) {
	tab := tableWith([]float64{100, 1000}, map[string][]float64{"a": {0.7, 0.98}})
	if c := CheckGainAtLeast(tab, "a", 100, 0.25); !c.Pass {
		t.Fatalf("gain check failed: %+v", c)
	}
	if c := CheckGainAtLeast(tab, "a", 100, 0.35); c.Pass {
		t.Fatal("gain check should fail at 35%")
	}
	if c := CheckConvergesToBaseline(tab, "a", 0.05); !c.Pass {
		t.Fatalf("convergence check failed: %+v", c)
	}
	if c := CheckTrend(tab, "a", true, 0); !c.Pass {
		t.Fatal("trend check failed")
	}
	if c := CheckAllBelow(tab, "a", 0.99); !c.Pass {
		t.Fatal("below check failed")
	}
	if c := CheckAllBelow(tab, "a", 0.9); c.Pass {
		t.Fatal("below check should fail")
	}
	if c := CheckGainAtLeast(tab, "missing", 100, 0.1); c.Pass {
		t.Fatal("missing series must fail")
	}
}

func TestCheckOrderAndGap(t *testing.T) {
	tab := tableWith([]float64{0.01, 1}, map[string][]float64{
		experiments.SeriesIGEG:      {0.94, 0.70},
		experiments.SeriesFaultFree: {0.95, 0.66},
	})
	if c := CheckOrder(tab, experiments.SeriesFaultFree, experiments.SeriesIGEG, 0.0); !c.Pass {
		t.Fatalf("order check failed: %+v", c)
	}
	if c := CheckGapShrinks(tab, experiments.SeriesIGEG, experiments.SeriesFaultFree, 2); !c.Pass {
		t.Fatalf("gap check failed: %+v", c)
	}
	if c := CheckGapShrinks(tab, experiments.SeriesIGEG, experiments.SeriesFaultFree, 100); c.Pass {
		t.Fatal("gap factor 100 should fail on this data")
	}
}

// TestClaimsOnSyntheticPaperShapes drives CheckFigure with tables shaped
// exactly like the paper's figures; every check must pass.
func TestClaimsOnSyntheticPaperShapes(t *testing.T) {
	fig5 := tableWith([]float64{200, 1000, 2000}, map[string][]float64{
		experiments.SeriesFFNoRC:   {1, 1, 1},
		experiments.SeriesFFGreedy: {0.78, 0.95, 0.99},
		experiments.SeriesFFLocal:  {0.80, 0.96, 0.995},
	})
	for _, c := range CheckFigure("5a", fig5) {
		if !c.Pass {
			t.Fatalf("5a synthetic check failed: %+v", c)
		}
	}

	fig7 := tableWith([]float64{100, 500, 1000}, map[string][]float64{
		experiments.SeriesNoRC:      {1, 1, 1},
		experiments.SeriesIGEG:      {0.88, 0.64, 0.55},
		experiments.SeriesIGEL:      {0.88, 0.64, 0.56},
		experiments.SeriesSTFEG:     {0.85, 0.66, 0.56},
		experiments.SeriesSTFEL:     {0.86, 0.66, 0.56},
		experiments.SeriesFaultFree: {0.73, 0.57, 0.50},
	})
	for _, c := range CheckFigure("7", fig7) {
		if !c.Pass {
			t.Fatalf("7 synthetic check failed: %+v", c)
		}
	}

	fig10 := tableWith([]float64{5, 50, 125}, map[string][]float64{
		experiments.SeriesNoRC:      {1, 1, 1},
		experiments.SeriesIGEG:      {0.81, 0.74, 0.69},
		experiments.SeriesIGEL:      {0.81, 0.74, 0.69},
		experiments.SeriesSTFEG:     {0.80, 0.75, 0.69},
		experiments.SeriesSTFEL:     {0.80, 0.75, 0.70},
		experiments.SeriesFaultFree: {0.62, 0.67, 0.64},
	})
	for _, c := range CheckFigure("10", fig10) {
		if !c.Pass {
			t.Fatalf("10 synthetic check failed: %+v", c)
		}
	}

	// A broken shape must be caught.
	bad := tableWith([]float64{100, 500, 1000}, map[string][]float64{
		experiments.SeriesNoRC:      {1, 1, 1},
		experiments.SeriesIGEG:      {0.55, 0.70, 0.95}, // gains shrink with n: wrong
		experiments.SeriesIGEL:      {0.55, 0.70, 0.95},
		experiments.SeriesSTFEG:     {0.55, 0.70, 0.95},
		experiments.SeriesSTFEL:     {0.55, 0.70, 0.95},
		experiments.SeriesFaultFree: {0.50, 0.60, 0.90},
	})
	failures := 0
	for _, c := range CheckFigure("7", bad) {
		if !c.Pass {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("inverted Figure 7 shape passed all checks")
	}
}

func TestClaimTextCoverage(t *testing.T) {
	for _, id := range []string{"5a", "5b", "6a", "6b", "7", "8", "9", "10", "11", "12", "13a", "13b", "13c", "14"} {
		if ClaimText(id) == "" {
			t.Fatalf("figure %s has no claim text", id)
		}
	}
	if ClaimText("zz") != "" {
		t.Fatal("unknown figure should have empty claim")
	}
}

func TestSummary(t *testing.T) {
	checks := []Check{{Pass: true}, {Pass: false}, {Pass: true}}
	p, n := Summary(checks)
	if p != 2 || n != 3 {
		t.Fatalf("summary = %d/%d", p, n)
	}
}

func TestCheckFigureUnknown(t *testing.T) {
	if CheckFigure("zz", &stats.Table{}) != nil {
		t.Fatal("unknown figure should yield no checks")
	}
}
