// Package shape provides the qualitative-shape analysis used to compare
// reproduced figures against the paper's claims: trends, gains, series
// orderings and crossovers. cmd/report runs these checks over the
// regenerated CSVs and writes EXPERIMENTS.md; the same primitives back
// assertions in the test suite.
//
// Reproduction philosophy (DESIGN.md §6): absolute numbers depend on the
// substrate, but the *shape* — who wins, by roughly what factor, where
// crossovers fall — must hold. Every check therefore takes explicit
// tolerances.
package shape

import (
	"fmt"
	"math"

	"cosched/internal/stats"
)

// Check is one verified claim about a figure.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

func pass(name, format string, args ...interface{}) Check {
	return Check{Name: name, Pass: true, Detail: fmt.Sprintf(format, args...)}
}

func fail(name, format string, args ...interface{}) Check {
	return Check{Name: name, Pass: false, Detail: fmt.Sprintf(format, args...)}
}

// TrendUp reports whether ys is non-decreasing up to a relative
// tolerance (each step may dip by at most tol of the value).
func TrendUp(ys []float64, tol float64) bool {
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1]*(1-tol)-tol*1e-12 {
			return false
		}
	}
	return true
}

// TrendDown reports whether ys is non-increasing up to a tolerance.
func TrendDown(ys []float64, tol float64) bool {
	for i := 1; i < len(ys); i++ {
		if ys[i] > ys[i-1]*(1+tol) {
			return false
		}
	}
	return true
}

// Gain converts a normalized makespan into the paper's "gain" (1 − y).
func Gain(y float64) float64 { return 1 - y }

// MeanY returns the mean of a named series (NaN if missing).
func MeanY(t *stats.Table, name string) float64 {
	s := t.SeriesByName(name)
	if s == nil {
		return math.NaN()
	}
	return stats.Mean(s.Y)
}

// At returns the value of a named series at the x closest to the target.
func At(t *stats.Table, name string, x float64) float64 {
	s := t.SeriesByName(name)
	if s == nil || len(t.X) == 0 {
		return math.NaN()
	}
	best, bestD := 0, math.Inf(1)
	for i, xv := range t.X {
		if d := math.Abs(xv - x); d < bestD {
			best, bestD = i, d
		}
	}
	return s.Y[best]
}

// First and Last return the endpoint values of a named series.
func First(t *stats.Table, name string) float64 {
	s := t.SeriesByName(name)
	if s == nil || len(s.Y) == 0 {
		return math.NaN()
	}
	return s.Y[0]
}

// Last returns the final value of a named series.
func Last(t *stats.Table, name string) float64 {
	s := t.SeriesByName(name)
	if s == nil || len(s.Y) == 0 {
		return math.NaN()
	}
	return s.Y[len(s.Y)-1]
}

// MaxGap returns the largest pointwise difference a(x) − b(x).
func MaxGap(t *stats.Table, a, b string) float64 {
	sa, sb := t.SeriesByName(a), t.SeriesByName(b)
	if sa == nil || sb == nil {
		return math.NaN()
	}
	worst := math.Inf(-1)
	for i := range sa.Y {
		if d := sa.Y[i] - sb.Y[i]; d > worst {
			worst = d
		}
	}
	return worst
}

// CheckGainAtLeast verifies 1 − series(x≈target) ≥ minGain.
func CheckGainAtLeast(t *stats.Table, series string, x, minGain float64) Check {
	name := fmt.Sprintf("gain of %q at x≈%g ≥ %.0f%%", series, x, 100*minGain)
	v := At(t, series, x)
	if math.IsNaN(v) {
		return fail(name, "series missing")
	}
	if g := Gain(v); g >= minGain {
		return pass(name, "measured %.1f%%", 100*g)
	} else {
		return fail(name, "measured %.1f%%", 100*g)
	}
}

// CheckConvergesToBaseline verifies that the series approaches 1 at its
// last point (within slack) while starting strictly below it — the
// "redistribution stops paying on large platforms" shape of Figs 5–6.
func CheckConvergesToBaseline(t *stats.Table, series string, slack float64) Check {
	name := fmt.Sprintf("%q converges to the baseline", series)
	first, last := First(t, series), Last(t, series)
	if math.IsNaN(first) {
		return fail(name, "series missing")
	}
	if last < 1+slack && last > 1-slack && first < last {
		return pass(name, "from %.3f to %.3f", first, last)
	}
	return fail(name, "from %.3f to %.3f", first, last)
}

// CheckTrend verifies the monotone trend of a series.
func CheckTrend(t *stats.Table, series string, up bool, tol float64) Check {
	dir := "decreasing"
	if up {
		dir = "increasing"
	}
	name := fmt.Sprintf("%q is %s (tol %.0f%%)", series, dir, 100*tol)
	s := t.SeriesByName(series)
	if s == nil {
		return fail(name, "series missing")
	}
	ok := TrendDown(s.Y, tol)
	if up {
		ok = TrendUp(s.Y, tol)
	}
	if ok {
		return pass(name, "from %.3f to %.3f", s.Y[0], s.Y[len(s.Y)-1])
	}
	return fail(name, "series %v", s.Y)
}

// CheckOrder verifies mean(a) ≤ mean(b) + slack.
func CheckOrder(t *stats.Table, a, b string, slack float64) Check {
	name := fmt.Sprintf("mean of %q ≤ mean of %q (+%.3f)", a, b, slack)
	ma, mb := MeanY(t, a), MeanY(t, b)
	if math.IsNaN(ma) || math.IsNaN(mb) {
		return fail(name, "series missing")
	}
	if ma <= mb+slack {
		return pass(name, "%.3f vs %.3f", ma, mb)
	}
	return fail(name, "%.3f vs %.3f", ma, mb)
}

// CheckAllBelow verifies every point of the series stays below bound.
func CheckAllBelow(t *stats.Table, series string, bound float64) Check {
	name := fmt.Sprintf("%q stays below %.3g everywhere", series, bound)
	s := t.SeriesByName(series)
	if s == nil {
		return fail(name, "series missing")
	}
	worst := math.Inf(-1)
	for _, v := range s.Y {
		if v > worst {
			worst = v
		}
	}
	if worst < bound {
		return pass(name, "max %.3f", worst)
	}
	return fail(name, "max %.3f", worst)
}

// CheckGapShrinks verifies that the pointwise gap between a heuristic
// and the fault-free bound shrinks from the first to the last x — the
// Figure 12 claim about cheap checkpoints.
func CheckGapShrinks(t *stats.Table, heuristic, bound string, factor float64) Check {
	name := fmt.Sprintf("gap %q − %q shrinks by ≥ %.0fx across the sweep", heuristic, bound, factor)
	h, bd := t.SeriesByName(heuristic), t.SeriesByName(bound)
	if h == nil || bd == nil {
		return fail(name, "series missing")
	}
	n := len(h.Y) - 1
	gFirst := math.Abs(h.Y[0] - bd.Y[0]) // cheapest checkpoints
	gLast := math.Abs(h.Y[n] - bd.Y[n])  // most expensive checkpoints
	if gLast >= gFirst*factor {
		return pass(name, "gap %.4f at x=%g vs %.4f at x=%g", gFirst, t.X[0], gLast, t.X[n])
	}
	return fail(name, "gap %.4f at x=%g vs %.4f at x=%g", gFirst, t.X[0], gLast, t.X[n])
}

// Summary counts passed checks.
func Summary(checks []Check) (passed, total int) {
	for _, c := range checks {
		if c.Pass {
			passed++
		}
	}
	return passed, len(checks)
}
