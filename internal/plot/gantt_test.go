package plot

import (
	"strings"
	"testing"
)

func sampleRows() []GanttRow {
	return []GanttRow{
		{Label: "task 0", Times: []float64{0, 100, 250}, Procs: []int{4, 6, 0}},
		{Label: "task 1", Times: []float64{0, 100}, Procs: []int{2, 0}},
	}
}

func TestGanttSVGStructure(t *testing.T) {
	out := GanttSVG(sampleRows(), 600, 30)
	for _, want := range []string{"<svg", "</svg>", "task 0", "task 1", "time (s)", "<rect"} {
		if !strings.Contains(out, want) {
			t.Fatalf("gantt missing %q", want)
		}
	}
	// Three visible bands: task0 ×2 (4 then 6 procs), task1 ×1; plus the
	// background rect.
	if got := strings.Count(out, "<rect"); got != 4 {
		t.Fatalf("want 4 rects, got %d", got)
	}
	// Tooltips carry the allocation.
	if !strings.Contains(out, "6 procs") {
		t.Fatal("tooltip with processor count missing")
	}
}

func TestGanttSVGEmpty(t *testing.T) {
	out := GanttSVG(nil, 400, 30)
	if !strings.Contains(out, "no data") || !strings.Contains(out, "</svg>") {
		t.Fatal("empty gantt should render a notice and close the document")
	}
}

func TestGanttSVGZeroDurationBandsSkipped(t *testing.T) {
	rows := []GanttRow{{Label: "t", Times: []float64{0, 0, 50}, Procs: []int{2, 4, 0}}}
	out := GanttSVG(rows, 400, 30)
	// Only the 4-proc band survives (plus background).
	if got := strings.Count(out, "<rect"); got != 2 {
		t.Fatalf("want 2 rects, got %d", got)
	}
}

func TestGanttSVGDeterministic(t *testing.T) {
	if GanttSVG(sampleRows(), 600, 30) != GanttSVG(sampleRows(), 600, 30) {
		t.Fatal("gantt output not deterministic")
	}
}

func TestGanttSVGEscapesLabels(t *testing.T) {
	rows := []GanttRow{{Label: "a<b>", Times: []float64{0, 10}, Procs: []int{2, 0}}}
	out := GanttSVG(rows, 400, 30)
	if strings.Contains(out, "a<b>") {
		t.Fatal("label not escaped")
	}
}
