package plot

import (
	"fmt"
	"math"
	"strings"

	"cosched/internal/stats"
)

// Palette holds the series colors used by the SVG renderer.
var Palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e",
	"#9467bd", "#8c564b", "#17becf", "#7f7f7f",
}

// SVG renders the table as a standalone SVG document with axes, tick
// marks, series polylines with point markers, and a legend. The output is
// deterministic for a given table.
func SVG(t *stats.Table, width, height int) string {
	if width < 200 {
		width = 200
	}
	if height < 150 {
		height = 150
	}
	const (
		marginL = 70
		marginR = 160
		marginT = 40
		marginB = 55
	)
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if t.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
			marginL, escape(t.Title))
	}
	if len(t.X) == 0 || len(t.Series) == 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="13">no data</text>`+"\n",
			marginL, height/2)
		b.WriteString("</svg>\n")
		return b.String()
	}

	xmin, xmax := minMax(t.X)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range t.Series {
		lo, hi := minMax(s.Y)
		ymin, ymax = math.Min(ymin, lo), math.Max(ymax, hi)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	pad := (ymax - ymin) * 0.07
	ymin -= pad
	ymax += pad

	px := func(x float64) float64 { return float64(marginL) + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return float64(marginT) + (ymax-y)/(ymax-ymin)*plotH }

	// Axes.
	fmt.Fprintf(&b, `<g stroke="black" stroke-width="1">`+"\n")
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g"/>`+"\n",
		px(xmin), py(ymin), px(xmax), py(ymin))
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g"/>`+"\n",
		px(xmin), py(ymin), px(xmin), py(ymax))
	b.WriteString("</g>\n")

	// Ticks: 5 per axis.
	fmt.Fprintf(&b, `<g font-family="sans-serif" font-size="11" fill="black">`+"\n")
	for k := 0; k <= 4; k++ {
		xv := xmin + (xmax-xmin)*float64(k)/4
		yv := ymin + (ymax-ymin)*float64(k)/4
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
			px(xv), py(ymin), px(xv), py(ymin)+5)
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle">%.4g</text>`+"\n",
			px(xv), py(ymin)+20, xv)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
			px(xmin)-5, py(yv), px(xmin), py(yv))
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="end">%.4g</text>`+"\n",
			px(xmin)-8, py(yv)+4, yv)
	}
	if t.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%g" y="%d" text-anchor="middle" font-size="13">%s</text>`+"\n",
			px((xmin+xmax)/2), height-10, escape(t.XLabel))
	}
	if t.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%g" text-anchor="middle" font-size="13" transform="rotate(-90 14 %g)">%s</text>`+"\n",
			py((ymin+ymax)/2), py((ymin+ymax)/2), escape(t.YLabel))
	}
	b.WriteString("</g>\n")

	// Series.
	for si, s := range t.Series {
		color := Palette[si%len(Palette)]
		var pts []string
		for k := range t.X {
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", px(t.X[k]), py(s.Y[k])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
			strings.Join(pts, " "), color)
		for k := range t.X {
			fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="2.6" fill="%s"/>`+"\n",
				px(t.X[k]), py(s.Y[k]), color)
		}
		// Legend entry.
		ly := marginT + 18*si
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			width-marginR+10, ly, width-marginR+34, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			width-marginR+40, ly+4, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
