package plot

import (
	"fmt"
	"math"
	"strings"
)

// GanttRow is one task's allocation step function: Procs[i] processors
// from Times[i] until Times[i+1] (or the end of the run). A Procs value
// of 0 means the task has finished.
type GanttRow struct {
	Label string
	Times []float64
	Procs []int
}

// GanttSVG renders task allocations over time as horizontal bands whose
// thickness is proportional to the processor count — the visual form of
// the paper's Figure 1 (redistribution at the end of a task). The
// returned document is standalone SVG.
func GanttSVG(rows []GanttRow, width, rowHeight int) string {
	if width < 300 {
		width = 300
	}
	if rowHeight < 24 {
		rowHeight = 24
	}
	const (
		marginL = 90
		marginR = 30
		marginT = 34
		marginB = 40
	)
	height := marginT + marginB + rowHeight*len(rows)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-family="sans-serif" font-size="14" font-weight="bold">Processor allocation over time</text>`+"\n", marginL)

	end := 0.0
	maxProcs := 1
	for _, r := range rows {
		if n := len(r.Times); n > 0 && r.Times[n-1] > end {
			end = r.Times[n-1]
		}
		for _, p := range r.Procs {
			if p > maxProcs {
				maxProcs = p
			}
		}
	}
	if end == 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">no data</text></svg>`+"\n",
			marginL, height/2)
		return b.String()
	}
	plotW := float64(width - marginL - marginR)
	px := func(t float64) float64 { return float64(marginL) + t/end*plotW }

	for ri, r := range rows {
		y := marginT + ri*rowHeight
		mid := float64(y) + float64(rowHeight)/2
		color := Palette[ri%len(Palette)]
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-8, mid+4, escape(r.Label))
		for i := 0; i < len(r.Times); i++ {
			procs := r.Procs[i]
			if procs <= 0 {
				continue
			}
			t0 := r.Times[i]
			t1 := end
			if i+1 < len(r.Times) {
				t1 = r.Times[i+1]
			}
			if t1 <= t0 {
				continue
			}
			// Band thickness encodes the processor count.
			thick := math.Max(2, float64(rowHeight-8)*float64(procs)/float64(maxProcs))
			fmt.Fprintf(&b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="0.8">`+
				`<title>%s: %d procs [%.0f, %.0f)</title></rect>`+"\n",
				px(t0), mid-thick/2, px(t1)-px(t0), thick, color, escape(r.Label), procs, t0, t1)
		}
	}

	// Time axis with 5 ticks.
	axisY := height - marginB + 6
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, axisY, width-marginR, axisY)
	for k := 0; k <= 4; k++ {
		t := end * float64(k) / 4
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			px(t), axisY, px(t), axisY+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%.3g</text>`+"\n",
			px(t), axisY+18, t)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">time (s)</text>`+"\n",
		marginL+int(plotW/2), height-6)
	b.WriteString("</svg>\n")
	return b.String()
}
