// Package plot renders the experiment tables as terminal (ASCII) charts
// and standalone SVG files, with no dependencies beyond the standard
// library. It exists so that every figure of the paper can be regenerated
// and eyeballed straight from the CLI.
package plot

import (
	"fmt"
	"math"
	"strings"

	"cosched/internal/stats"
)

// Markers assigns one rune per series, cycling if there are many.
var Markers = []rune{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// ASCII renders the table as a width×height character chart with axes,
// tick labels and a legend. Series points are linearly interpolated on
// the x grid and drawn with per-series markers; later series overdraw
// earlier ones on collisions.
func ASCII(t *stats.Table, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 6 {
		height = 6
	}
	if len(t.X) == 0 || len(t.Series) == 0 {
		return "(empty table)\n"
	}
	xmin, xmax := minMax(t.X)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range t.Series {
		lo, hi := minMax(s.Y)
		ymin, ymax = math.Min(ymin, lo), math.Max(ymax, hi)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// A little vertical headroom keeps curves off the frame.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	toCol := func(x float64) int {
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		return clamp(c, 0, width-1)
	}
	toRow := func(y float64) int {
		r := int(math.Round((ymax - y) / (ymax - ymin) * float64(height-1)))
		return clamp(r, 0, height-1)
	}
	for si, s := range t.Series {
		marker := Markers[si%len(Markers)]
		// Draw line segments between consecutive points.
		for k := 0; k+1 < len(t.X); k++ {
			c0, r0 := toCol(t.X[k]), toRow(s.Y[k])
			c1, r1 := toCol(t.X[k+1]), toRow(s.Y[k+1])
			drawSegment(grid, c0, r0, c1, r1, marker)
		}
		if len(t.X) == 1 {
			grid[toRow(s.Y[0])][toCol(t.X[0])] = marker
		}
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	for r := 0; r < height; r++ {
		label := "          "
		if r == 0 {
			label = fmt.Sprintf("%10.3g", ymax)
		} else if r == height-1 {
			label = fmt.Sprintf("%10.3g", ymin)
		} else if r == height/2 {
			label = fmt.Sprintf("%10.3g", ymax-(ymax-ymin)*float64(r)/float64(height-1))
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*.4g%*.4g\n", strings.Repeat(" ", 10), width/2, xmin, width-width/2, xmax)
	if t.XLabel != "" || t.YLabel != "" {
		fmt.Fprintf(&b, "%12s x: %s   y: %s\n", "", t.XLabel, t.YLabel)
	}
	for si, s := range t.Series {
		fmt.Fprintf(&b, "%12s %c %s\n", "", Markers[si%len(Markers)], s.Name)
	}
	return b.String()
}

// drawSegment rasterizes a line segment with the given marker.
func drawSegment(grid [][]rune, c0, r0, c1, r1 int, marker rune) {
	steps := max(abs(c1-c0), abs(r1-r0))
	if steps == 0 {
		grid[r0][c0] = marker
		return
	}
	for s := 0; s <= steps; s++ {
		c := c0 + (c1-c0)*s/steps
		r := r0 + (r1-r0)*s/steps
		grid[r][c] = marker
	}
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
