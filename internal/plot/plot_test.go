package plot

import (
	"strings"
	"testing"

	"cosched/internal/stats"
)

func sampleTable() *stats.Table {
	t := &stats.Table{
		Title:  "Sample",
		XLabel: "#procs",
		YLabel: "normalized time",
		X:      []float64{100, 200, 300, 400},
	}
	t.AddSeries("base", []float64{1, 1, 1, 1})
	t.AddSeries("heuristic", []float64{0.6, 0.7, 0.8, 0.9})
	return t
}

func TestASCIIContainsStructure(t *testing.T) {
	out := ASCII(sampleTable(), 60, 15)
	if !strings.Contains(out, "Sample") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "base") || !strings.Contains(out, "heuristic") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("series markers missing")
	}
	if !strings.Contains(out, "#procs") {
		t.Fatal("axis label missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + xlabels + labels line + 2 legend lines
	if len(lines) < 15 {
		t.Fatalf("chart suspiciously short: %d lines", len(lines))
	}
}

func TestASCIIEmptyTable(t *testing.T) {
	out := ASCII(&stats.Table{}, 40, 10)
	if !strings.Contains(out, "empty") {
		t.Fatal("empty table should render a notice")
	}
}

func TestASCIISinglePoint(t *testing.T) {
	tab := &stats.Table{X: []float64{5}}
	tab.AddSeries("only", []float64{2})
	out := ASCII(tab, 40, 8)
	if !strings.Contains(out, "*") {
		t.Fatal("single point not drawn")
	}
}

func TestASCIIFlatSeries(t *testing.T) {
	tab := &stats.Table{X: []float64{1, 2, 3}}
	tab.AddSeries("flat", []float64{4, 4, 4})
	out := ASCII(tab, 40, 8)
	if !strings.Contains(out, "*") {
		t.Fatal("flat series not drawn")
	}
}

func TestASCIIMinimumDimensions(t *testing.T) {
	out := ASCII(sampleTable(), 1, 1)
	if len(out) == 0 {
		t.Fatal("degenerate dimensions should still render")
	}
}

func TestSVGWellFormed(t *testing.T) {
	out := SVG(sampleTable(), 640, 400)
	for _, want := range []string{"<svg", "</svg>", "<polyline", "<circle", "Sample", "heuristic", "#procs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Fatalf("want 2 polylines, got %d", strings.Count(out, "<polyline"))
	}
	// 4 points per series.
	if strings.Count(out, "<circle") != 8 {
		t.Fatalf("want 8 circles, got %d", strings.Count(out, "<circle"))
	}
}

func TestSVGEscapesLabels(t *testing.T) {
	tab := &stats.Table{Title: `a<b&"c"`, X: []float64{1, 2}}
	tab.AddSeries("s<1>", []float64{1, 2})
	out := SVG(tab, 300, 200)
	if strings.Contains(out, "a<b") || strings.Contains(out, "s<1>") {
		t.Fatal("labels not escaped")
	}
	if !strings.Contains(out, "a&lt;b&amp;") {
		t.Fatal("escape output wrong")
	}
}

func TestSVGEmpty(t *testing.T) {
	out := SVG(&stats.Table{}, 300, 200)
	if !strings.Contains(out, "no data") {
		t.Fatal("empty SVG should carry a notice")
	}
	if !strings.Contains(out, "</svg>") {
		t.Fatal("document not closed")
	}
}

func TestSVGDeterministic(t *testing.T) {
	a := SVG(sampleTable(), 640, 400)
	b := SVG(sampleTable(), 640, 400)
	if a != b {
		t.Fatal("SVG output not deterministic")
	}
}

func TestDrawSegmentBounds(t *testing.T) {
	// Steep and flat segments stay within the grid.
	grid := make([][]rune, 5)
	for r := range grid {
		grid[r] = []rune("     ")
	}
	drawSegment(grid, 0, 0, 4, 4, '*')
	drawSegment(grid, 0, 4, 4, 4, '+')
	drawSegment(grid, 2, 2, 2, 2, 'o')
	if grid[2][2] != 'o' && grid[2][2] != '*' {
		t.Fatal("point draw failed")
	}
}
