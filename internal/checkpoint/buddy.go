package checkpoint

import "fmt"

// PairState describes the health of one buddy pair.
type PairState int

const (
	// PairHealthy means both checkpoints (own + buddy's) are in memory.
	PairHealthy PairState = iota
	// PairRecovering means one processor of the pair failed and the
	// buddy is re-sending both checkpoint files; a second failure on the
	// pair during this window is fatal (§2.2).
	PairRecovering
)

// BuddyManager tracks the state of the double-checkpointing protocol over
// processor pairs: pair k = processors (2k, 2k+1), buddy(q) = q XOR 1.
// Each processor stores two checkpoint files — its own and its buddy's —
// so the in-memory footprint per processor is twice the per-processor
// checkpoint size (2·C_i/j of task data).
//
// The paper's simulation assumes failures cannot strike during recovery
// (§6.1), so fatal double failures never materialize there; the manager
// still detects them so that the deterministic-semantics engine and the
// tests can count near misses.
type BuddyManager struct {
	p     int
	state []PairState
	until []float64 // recovery end time per pair, meaningful when recovering
	fatal int
}

// NewBuddyManager creates a manager for p processors (p even, positive).
func NewBuddyManager(p int) (*BuddyManager, error) {
	if p <= 0 || p%2 != 0 {
		return nil, fmt.Errorf("checkpoint: processor count %d must be positive and even", p)
	}
	return &BuddyManager{
		p:     p,
		state: make([]PairState, p/2),
		until: make([]float64, p/2),
	}, nil
}

// Buddy returns the buddy processor of q.
func Buddy(q int) int { return q ^ 1 }

// State returns the state of the pair owning processor q at time t,
// advancing Recovering → Healthy when the recovery window has elapsed.
func (b *BuddyManager) State(q int, t float64) PairState {
	k := b.pair(q)
	if b.state[k] == PairRecovering && t >= b.until[k] {
		b.state[k] = PairHealthy
	}
	return b.state[k]
}

// Strike records a failure on processor q at time t with the given
// recovery duration (downtime + buddy re-send). It returns true when the
// failure is fatal: the pair was already recovering, so both copies of a
// checkpoint are lost.
func (b *BuddyManager) Strike(q int, t, recovery float64) (fatal bool) {
	k := b.pair(q)
	if b.State(q, t) == PairRecovering {
		b.fatal++
		// The pair restarts recovery from scratch; from the protocol's
		// point of view the data is gone, but we keep bookkeeping sane.
		b.until[k] = t + recovery
		return true
	}
	b.state[k] = PairRecovering
	b.until[k] = t + recovery
	return false
}

// FatalCount returns the number of fatal double failures observed.
func (b *BuddyManager) FatalCount() int { return b.fatal }

// MemoryPerProc returns the checkpoint memory footprint of one processor
// of a task with sequential checkpoint size c running on j processors:
// two files (own + buddy) of c/j each.
func MemoryPerProc(c float64, j int) float64 {
	if j <= 0 {
		panic(fmt.Sprintf("checkpoint: MemoryPerProc with j=%d", j))
	}
	return 2 * c / float64(j)
}

func (b *BuddyManager) pair(q int) int {
	if q < 0 || q >= b.p {
		panic(fmt.Sprintf("checkpoint: processor %d out of range [0,%d)", q, b.p))
	}
	return q / 2
}
