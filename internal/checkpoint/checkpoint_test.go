package checkpoint

import (
	"math"
	"testing"
	"testing/quick"

	"cosched/internal/rng"
)

func TestSegmentValid(t *testing.T) {
	good := Segment{Start: 0, Period: 10, Ckpt: 1}
	if err := good.Valid(); err != nil {
		t.Fatal(err)
	}
	ff := Segment{Start: 5, Period: math.Inf(1), Ckpt: 1}
	if err := ff.Valid(); err != nil {
		t.Fatal(err)
	}
	bad := []Segment{
		{Start: math.NaN(), Period: 10, Ckpt: 1},
		{Start: math.Inf(1), Period: 10, Ckpt: 1},
		{Start: 0, Period: 10, Ckpt: -1},
		{Start: 0, Period: 1, Ckpt: 2},
		{Start: 0, Period: 1, Ckpt: 1},
	}
	for i, s := range bad {
		if s.Valid() == nil {
			t.Fatalf("bad segment %d accepted", i)
		}
	}
}

func TestCheckpointsBy(t *testing.T) {
	s := Segment{Start: 100, Period: 10, Ckpt: 2}
	cases := []struct {
		t    float64
		want int
	}{
		{0, 0}, {100, 0}, {105, 0}, {110, 1}, {119.9, 1}, {120, 2}, {155, 5},
	}
	for _, c := range cases {
		if got := s.CheckpointsBy(c.t); got != c.want {
			t.Fatalf("CheckpointsBy(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestCommittedAndUsefulWork(t *testing.T) {
	s := Segment{Start: 0, Period: 10, Ckpt: 2}
	// At t=25: two full periods (16 work), plus 5 in-flight.
	if got := s.CommittedWork(25); got != 16 {
		t.Fatalf("CommittedWork = %v, want 16", got)
	}
	if got := s.UsefulWork(25); got != 21 {
		t.Fatalf("UsefulWork = %v, want 21", got)
	}
	if got := s.LostWork(25); got != 5 {
		t.Fatalf("LostWork = %v, want 5", got)
	}
	if s.UsefulWork(-5) != 0 {
		t.Fatal("UsefulWork before start must be 0")
	}
}

func TestLastCheckpointTime(t *testing.T) {
	s := Segment{Start: 50, Period: 10, Ckpt: 1}
	if got := s.LastCheckpointTime(55); got != 50 {
		t.Fatalf("no checkpoint yet: got %v, want 50", got)
	}
	if got := s.LastCheckpointTime(75); got != 70 {
		t.Fatalf("LastCheckpointTime(75) = %v, want 70", got)
	}
}

func TestFaultFreeSegment(t *testing.T) {
	s := Segment{Start: 0, Period: math.Inf(1), Ckpt: 0}
	if s.CheckpointsBy(1e12) != 0 || s.CommittedWork(1e12) != 0 {
		t.Fatal("fault-free segment must never checkpoint")
	}
	if got := s.UsefulWork(123); got != 123 {
		t.Fatalf("fault-free useful work = %v, want 123", got)
	}
}

// TestClosedFormMatchesStepSimulator is the cross-validation the engine
// relies on: Eq. (8) arithmetic must equal explicit period-walking.
func TestClosedFormMatchesStepSimulator(t *testing.T) {
	src := rng.New(99)
	err := quick.Check(func(seed uint64) bool {
		src.Reseed(seed)
		seg := Segment{
			Start:  src.Uniform(0, 1e6),
			Period: src.Uniform(1, 1e5),
			Ckpt:   0,
		}
		seg.Ckpt = src.Uniform(0, seg.Period*0.9)
		horizon := seg.Start + src.Uniform(0, 50)*seg.Period
		ss := NewStepSimulator(seg)
		n, committed := ss.Walk(horizon)
		if n != seg.CheckpointsBy(horizon) {
			return false
		}
		return math.Abs(committed-seg.CommittedWork(horizon)) < 1e-6*(committed+1)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBuddyManagerBasics(t *testing.T) {
	b, err := NewBuddyManager(8)
	if err != nil {
		t.Fatal(err)
	}
	if b.State(3, 0) != PairHealthy {
		t.Fatal("fresh pair should be healthy")
	}
	if fatal := b.Strike(3, 10, 5); fatal {
		t.Fatal("first strike must not be fatal")
	}
	if b.State(3, 12) != PairRecovering {
		t.Fatal("pair should be recovering")
	}
	// Buddy (processor 2) shares the pair state.
	if b.State(2, 12) != PairRecovering {
		t.Fatal("buddy processor must share recovery state")
	}
	// Second strike on the pair during recovery is fatal.
	if fatal := b.Strike(2, 13, 5); !fatal {
		t.Fatal("strike during recovery must be fatal")
	}
	if b.FatalCount() != 1 {
		t.Fatalf("fatal count = %d, want 1", b.FatalCount())
	}
	// After the window, the pair heals.
	if b.State(3, 100) != PairHealthy {
		t.Fatal("pair should heal after recovery window")
	}
	if fatal := b.Strike(3, 101, 5); fatal {
		t.Fatal("post-recovery strike must not be fatal")
	}
}

func TestBuddyManagerValidation(t *testing.T) {
	if _, err := NewBuddyManager(7); err == nil {
		t.Fatal("odd processor count accepted")
	}
	if _, err := NewBuddyManager(0); err == nil {
		t.Fatal("zero processor count accepted")
	}
	b, _ := NewBuddyManager(4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range processor did not panic")
		}
	}()
	b.State(4, 0)
}

func TestBuddyIsPlatformConsistent(t *testing.T) {
	for q := 0; q < 64; q++ {
		if Buddy(q)/2 != q/2 || Buddy(Buddy(q)) != q {
			t.Fatalf("buddy mapping broken at %d", q)
		}
	}
}

func TestMemoryPerProc(t *testing.T) {
	// Two checkpoint files of C/j each.
	if got := MemoryPerProc(1000, 4); got != 500 {
		t.Fatalf("MemoryPerProc = %v, want 500", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MemoryPerProc(., 0) did not panic")
		}
	}()
	MemoryPerProc(10, 0)
}

func BenchmarkCheckpointsBy(b *testing.B) {
	s := Segment{Start: 0, Period: 3600, Ckpt: 60}
	for i := 0; i < b.N; i++ {
		_ = s.CheckpointsBy(float64(i % 1000000))
	}
}
