// Package checkpoint implements the double-checkpointing substrate of the
// paper (§2.2, §3.1): periodic checkpoints with Young's period, buddy
// pairing of processors, and the segment arithmetic (Eq. 8) that the
// scheduling engine uses to account for completed and lost work.
//
// The engine never simulates individual checkpoints as events — it uses
// the closed-form arithmetic of Segment. The StepSimulator in this
// package re-derives the same quantities by walking period by period and
// is used in tests to cross-validate the closed forms.
package checkpoint

import (
	"fmt"
	"math"
)

// Segment describes one checkpointed execution stretch of a task: it
// starts computing at Start (the paper's tlastR_i, i.e. right after the
// last redistribution, recovery, or initial placement), takes a
// checkpoint of length Ckpt every Period (the period includes the
// checkpoint: work Period−Ckpt, then checkpoint Ckpt).
type Segment struct {
	Start  float64 // tlastR: when the segment starts computing
	Period float64 // τ_{i,j}; +Inf disables checkpointing (fault-free mode)
	Ckpt   float64 // C_{i,j}
}

// Valid reports whether the segment parameters are admissible.
func (s Segment) Valid() error {
	if math.IsNaN(s.Start) || math.IsInf(s.Start, 0) {
		return fmt.Errorf("checkpoint: non-finite start %v", s.Start)
	}
	if s.Ckpt < 0 {
		return fmt.Errorf("checkpoint: negative checkpoint cost %v", s.Ckpt)
	}
	if math.IsInf(s.Period, 1) {
		return nil // fault-free: no checkpoints ever
	}
	if s.Period <= s.Ckpt {
		return fmt.Errorf("checkpoint: period %v must exceed checkpoint cost %v", s.Period, s.Ckpt)
	}
	return nil
}

// CheckpointsBy returns N = ⌊(t − Start)/Period⌋ (Eq. 8): the number of
// checkpoints completed by wall-clock time t. Times before Start yield 0.
func (s Segment) CheckpointsBy(t float64) int {
	if t <= s.Start || math.IsInf(s.Period, 1) {
		return 0
	}
	return int(math.Floor((t - s.Start) / s.Period))
}

// CommittedWork returns the work (in time units on the current allocation)
// that survives a failure at time t: N·(Period−Ckpt), i.e. only whole
// periods sealed by a checkpoint.
func (s Segment) CommittedWork(t float64) float64 {
	n := s.CheckpointsBy(t)
	if n == 0 {
		return 0 // also avoids 0·Inf = NaN for fault-free segments
	}
	return float64(n) * (s.Period - s.Ckpt)
}

// UsefulWork returns the work performed by time t including the current
// unsealed period: t − Start − N·Ckpt. This is the progress credited to a
// task that is *not* hit by the failure (§3.3.2 "application ending
// case"). The result is clamped at 0 for t ≤ Start.
func (s Segment) UsefulWork(t float64) float64 {
	if t <= s.Start {
		return 0
	}
	w := t - s.Start - float64(s.CheckpointsBy(t))*s.Ckpt
	if w < 0 {
		return 0
	}
	return w
}

// LastCheckpointTime returns the wall-clock completion time of the most
// recent checkpoint by t, or Start when none has completed yet.
func (s Segment) LastCheckpointTime(t float64) float64 {
	n := s.CheckpointsBy(t)
	if n == 0 {
		return s.Start
	}
	return s.Start + float64(n)*s.Period
}

// LostWork returns the work destroyed by a failure at time t: everything
// since the last sealed checkpoint, excluding checkpoint overhead.
func (s Segment) LostWork(t float64) float64 {
	return s.UsefulWork(t) - s.CommittedWork(t)
}

// StepSimulator re-derives the segment quantities by explicit iteration
// over periods. It exists to cross-validate Segment's closed forms in
// tests (and intentionally has no clever arithmetic).
type StepSimulator struct {
	seg Segment
}

// NewStepSimulator wraps a segment.
func NewStepSimulator(seg Segment) *StepSimulator { return &StepSimulator{seg: seg} }

// Walk simulates execution until wall-clock time t and returns the number
// of completed checkpoints and the committed (checkpoint-sealed) work.
func (ss *StepSimulator) Walk(t float64) (checkpoints int, committed float64) {
	if math.IsInf(ss.seg.Period, 1) {
		return 0, 0
	}
	clock := ss.seg.Start
	for {
		endOfPeriod := clock + ss.seg.Period
		if endOfPeriod > t {
			return checkpoints, committed
		}
		checkpoints++
		committed += ss.seg.Period - ss.seg.Ckpt
		clock = endOfPeriod
	}
}
